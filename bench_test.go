package rix

// Benchmark harness: one testing.B benchmark per paper table/figure, plus
// micro-benchmarks of the core mechanisms. The figure benchmarks run the
// same code paths as `rixbench` on a reduced workload subset so that
// `go test -bench=.` completes in minutes; run `rixbench -suite all` for
// the full-suite numbers recorded in EXPERIMENTS.md.

import (
	"context"
	"reflect"
	"runtime"
	"sync"
	"testing"
	"time"

	"rix/internal/core"
	"rix/internal/emu"
	"rix/internal/experiments"
	"rix/internal/pipeline"
	"rix/internal/prog"
	"rix/internal/regfile"
	"rix/internal/run"
	"rix/internal/sample"
	"rix/internal/sim"
	"rix/internal/stats"
	"rix/internal/workload"
)

// benchSubset keeps `go test -bench=.` affordable; one benchmark per
// workload class.
var benchSubset = []string{"gzip", "crafty", "vortex", "mcf"}

var (
	cacheOnce sync.Once
	benchC    *experiments.Cache
)

func benchCache(b *testing.B) *experiments.Cache {
	b.Helper()
	cacheOnce.Do(func() {
		c, err := experiments.NewCache(benchSubset)
		if err != nil {
			panic(err)
		}
		benchC = c
	})
	return benchC
}

func runFigure(b *testing.B, f func(context.Context, *experiments.Cache) ([]*stats.Table, error)) {
	c := benchCache(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := f(context.Background(), c); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFigure4 regenerates the primary result (extension impact).
func BenchmarkFigure4(b *testing.B) { runFigure(b, experiments.Figure4) }

// BenchmarkFigure5 regenerates the integration stream breakdowns.
func BenchmarkFigure5(b *testing.B) { runFigure(b, experiments.Figure5) }

// BenchmarkFigure6 regenerates the IT associativity/size study.
func BenchmarkFigure6(b *testing.B) { runFigure(b, experiments.Figure6) }

// BenchmarkFigure7 regenerates the reduced-complexity core study.
func BenchmarkFigure7(b *testing.B) { runFigure(b, experiments.Figure7) }

// BenchmarkDiagnostics regenerates the §3.2/§3.5 scalar diagnostics.
func BenchmarkDiagnostics(b *testing.B) { runFigure(b, experiments.Diagnostics) }

// BenchmarkAblations regenerates the design-choice ablations.
func BenchmarkAblations(b *testing.B) { runFigure(b, experiments.Ablations) }

// BenchmarkPipeline measures raw simulation throughput (simulated
// instructions per second) for the full +reverse machine. The golden
// trace is materialized once outside the timed loop so the number
// isolates the pipeline itself; BenchmarkPipelineStreaming measures the
// end-to-end streaming path (emulator producer + pipeline consumer).
func BenchmarkPipeline(b *testing.B) {
	for _, name := range []string{"gzip", "crafty"} {
		for _, integ := range []string{sim.IntNone, sim.IntReverse} {
			b.Run(name+"/"+integ, func(b *testing.B) {
				bench, _ := workload.ByName(name)
				p, trace, err := bench.BuildMaterialized()
				if err != nil {
					b.Fatal(err)
				}
				o := sim.Options{Integration: integ}
				cfg, err := o.Config()
				if err != nil {
					b.Fatal(err)
				}
				b.ResetTimer()
				var retired, peak uint64
				for i := 0; i < b.N; i++ {
					st, err := pipeline.New(cfg, p, emu.FromSlice(trace)).Run()
					if err != nil {
						b.Fatal(err)
					}
					retired += st.Retired
					if st.TraceWindowPeak > peak {
						peak = st.TraceWindowPeak
					}
				}
				b.ReportMetric(float64(retired)/b.Elapsed().Seconds()/1e6, "Minstr/s")
				b.ReportMetric(float64(peak), "trace-peak")
			})
		}
	}
}

// BenchmarkPipelineStreaming measures the decoupled producer/consumer
// path: every iteration re-streams the golden trace from the emulator
// into the pipeline at O(ROB) memory, the configuration `rixbench` runs.
func BenchmarkPipelineStreaming(b *testing.B) {
	bench, _ := workload.ByName("gzip")
	bw, err := bench.Build()
	if err != nil {
		b.Fatal(err)
	}
	cfg, err := sim.Options{Integration: sim.IntReverse}.Config()
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	var retired, peak uint64
	for i := 0; i < b.N; i++ {
		st, err := pipeline.New(cfg, bw.Prog, bw.Source()).Run()
		if err != nil {
			b.Fatal(err)
		}
		retired += st.Retired
		if st.TraceWindowPeak > peak {
			peak = st.TraceWindowPeak
		}
	}
	b.ReportMetric(float64(retired)/b.Elapsed().Seconds()/1e6, "Minstr/s")
	b.ReportMetric(float64(peak), "trace-peak")
}

// BenchmarkPipelineSampled measures the interval-sampling engine
// end-to-end (functional fast-forward with warming + detailed windows)
// on the configuration rixbench -sample runs. Minstr/s counts every
// program instruction covered, not just the detailed ones, so the
// number is directly comparable to BenchmarkPipelineStreaming.
func BenchmarkPipelineSampled(b *testing.B) {
	bench, _ := workload.ByName("gzip")
	bw, err := bench.Build()
	if err != nil {
		b.Fatal(err)
	}
	cfg, err := sim.Options{Integration: sim.IntReverse}.Config()
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	var covered uint64
	for i := 0; i < b.N; i++ {
		est, err := sample.Run(context.Background(), bw.Prog, bw.DynLen, cfg, sample.Config{})
		if err != nil {
			b.Fatal(err)
		}
		covered += est.TotalInstrs
	}
	b.ReportMetric(float64(covered)/b.Elapsed().Seconds()/1e6, "Minstr/s")
}

// BenchmarkSampledParallel measures the two-phase sampled engine's
// window phase: a prepared warm set is injected (Config.Warm — the
// checkpoint-cache-hit path), so each timed iteration runs only the
// concurrent detail windows. "speedup" is wall-clock relative to the
// sequential end-to-end sampled run on the same machine, measured
// untimed before the loop; "cores" reports the host's parallelism so
// the benchgate can refuse to judge the speedup on starved runners.
// The estimate is asserted bit-identical to the sequential engine's
// every iteration.
func BenchmarkSampledParallel(b *testing.B) {
	bench, _ := workload.ByName("gzip")
	bw, err := bench.Build()
	if err != nil {
		b.Fatal(err)
	}
	cfg, err := sim.Options{Integration: sim.IntReverse}.Config()
	if err != nil {
		b.Fatal(err)
	}
	ctx := context.Background()

	// Sequential end-to-end baseline (warm pass + windows), and the
	// reference estimate the parallel path must reproduce exactly.
	seqStart := time.Now()
	seqEst, err := sample.Run(ctx, bw.Prog, bw.DynLen, cfg, sample.Config{})
	if err != nil {
		b.Fatal(err)
	}
	seqWall := time.Since(seqStart)

	warm, err := sample.PrepareWarm(ctx, bw.Prog, cfg, sample.Config{})
	if err != nil {
		b.Fatal(err)
	}
	// A persistent scheduler, as deployed: the runner engine creates one
	// pool per matrix and every cell's windows flow through it, so the
	// timed loop sees the steady state — each slot's boot structures and
	// pipeline scratch already built, rebooted in place per window.
	sched := sample.NewScheduler(runtime.GOMAXPROCS(0))
	defer sched.Close()
	sc := sample.Config{Scheduler: sched, Warm: warm}

	b.ResetTimer()
	var covered uint64
	for i := 0; i < b.N; i++ {
		est, err := sample.Run(ctx, bw.Prog, bw.DynLen, cfg, sc)
		if err != nil {
			b.Fatal(err)
		}
		if est.Agg != seqEst.Agg {
			b.Fatal("parallel estimate diverges from sequential")
		}
		covered += est.TotalInstrs
	}
	b.ReportMetric(float64(covered)/b.Elapsed().Seconds()/1e6, "Minstr/s")
	b.ReportMetric(seqWall.Seconds()/(b.Elapsed().Seconds()/float64(b.N)), "speedup")
	b.ReportMetric(float64(runtime.NumCPU()), "cores")
}

// BenchmarkWarmShard measures the sharded warm pass: stride snapshots
// are prepared once outside the loop and injected (Config.Strides —
// the stride-cache-hit path), so each timed iteration rebuilds the
// full WarmSet with its trace spans fanned across GOMAXPROCS warm
// workers. "speedup" is wall-clock relative to the sequential warm
// pass on the same machine, measured untimed before the loop; "cores"
// reports the host's parallelism so the benchgate can refuse to judge
// the speedup on starved runners. The sharded set is asserted
// bit-identical to the sequential pass before timing begins; Minstr/s
// counts warmed (fast-forwarded) instructions per second.
func BenchmarkWarmShard(b *testing.B) {
	bench, _ := workload.ByName("crafty")
	bw, err := bench.Build()
	if err != nil {
		b.Fatal(err)
	}
	cfg, err := sim.Options{Integration: sim.IntReverse}.Config()
	if err != nil {
		b.Fatal(err)
	}
	ctx := context.Background()

	// Sequential warm-pass baseline, and the reference set the sharded
	// build must reproduce exactly.
	seqStart := time.Now()
	seqWarm, err := sample.PrepareWarm(ctx, bw.Prog, cfg, sample.Config{})
	if err != nil {
		b.Fatal(err)
	}
	seqWall := time.Since(seqStart)

	str, err := sample.PrepareStrides(ctx, bw.Prog, cfg, sample.Config{})
	if err != nil {
		b.Fatal(err)
	}
	sc := sample.Config{Strides: str, WarmJobs: runtime.GOMAXPROCS(0)}
	warm, err := sample.PrepareWarm(ctx, bw.Prog, cfg, sc)
	if err != nil {
		b.Fatal(err)
	}
	if !reflect.DeepEqual(warm, seqWarm) {
		b.Fatal("sharded warm set diverges from sequential")
	}

	b.ResetTimer()
	var covered uint64
	for i := 0; i < b.N; i++ {
		w, err := sample.PrepareWarm(ctx, bw.Prog, cfg, sc)
		if err != nil {
			b.Fatal(err)
		}
		covered += w.Total
	}
	b.ReportMetric(float64(covered)/b.Elapsed().Seconds()/1e6, "Minstr/s")
	b.ReportMetric(seqWall.Seconds()/(b.Elapsed().Seconds()/float64(b.N)), "speedup")
	b.ReportMetric(float64(runtime.NumCPU()), "cores")
}

// BenchmarkSampledStealing measures what the shared work-stealing pool
// buys over the retired static per-cell split on a deliberately skewed
// matrix: two concurrent sampled cells of the same workload, one laid
// out with 4x the windows of the other. Under the static split (each
// cell its own half-size pool — the old `windows = max(1, j / cells)`
// arithmetic), the short cell's slots idle once it settles while the
// long cell grinds at half width; the shared pool hands them over.
// The static-split wall clock is measured untimed before the loop;
// "speedup" is its ratio to the timed shared-pool runs, and "cores"
// lets the benchgate skip judgment on starved runners (a 1-core host
// cannot show wall-clock gain from slot handoff). Warm sets are
// prepared once and injected, so both variants time only the window
// phase the scheduler actually governs.
func BenchmarkSampledStealing(b *testing.B) {
	bench, _ := workload.ByName("gzip")
	bw, err := bench.Build()
	if err != nil {
		b.Fatal(err)
	}
	cfg, err := sim.Options{Integration: sim.IntReverse}.Config()
	if err != nil {
		b.Fatal(err)
	}
	ctx := context.Background()
	layouts := []sample.Sampling{
		{Interval: 4000, Window: 600, Warmup: 300},  // long cell: ~4x the windows
		{Interval: 16000, Window: 600, Warmup: 300}, // short cell: settles early
	}
	warms := make([]*sample.WarmSet, len(layouts))
	for i, l := range layouts {
		if warms[i], err = sample.PrepareWarm(ctx, bw.Prog, cfg, sample.Config{Sampling: l}); err != nil {
			b.Fatal(err)
		}
	}
	jobs := runtime.GOMAXPROCS(0)
	if jobs < 4 {
		jobs = 4
	}

	runMatrix := func(scheds []*sample.Scheduler) time.Duration {
		start := time.Now()
		var wg sync.WaitGroup
		errs := make([]error, len(layouts))
		for i := range layouts {
			sc := sample.Config{Sampling: layouts[i], Scheduler: scheds[i], Warm: warms[i]}
			wg.Add(1)
			go func(i int, sc sample.Config) {
				defer wg.Done()
				_, errs[i] = sample.Run(ctx, bw.Prog, bw.DynLen, cfg, sc)
			}(i, sc)
		}
		wg.Wait()
		for _, err := range errs {
			if err != nil {
				b.Fatal(err)
			}
		}
		return time.Since(start)
	}

	// Untimed static-split reference: one private half-size pool per
	// cell, no stealing possible.
	half := []*sample.Scheduler{sample.NewScheduler(jobs / 2), sample.NewScheduler(jobs / 2)}
	staticWall := runMatrix(half)
	half[0].Close()
	half[1].Close()

	shared := sample.NewScheduler(jobs)
	defer shared.Close()
	pool := []*sample.Scheduler{shared, shared}

	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		runMatrix(pool)
	}
	b.ReportMetric(staticWall.Seconds()/(b.Elapsed().Seconds()/float64(b.N)), "speedup")
	b.ReportMetric(float64(runtime.NumCPU()), "cores")
}

// BenchmarkPipelineObserved measures the hot loop with the full
// cancellation/observation machinery armed: a live (cancellable)
// context plus a progress callback at the run API's default cadence —
// the configuration every run.Do simulation executes under. The
// benchgate baseline pins this at the plain hot loop's Minstr/s and
// allocs/op: the batched polls must stay free and allocation-free.
func BenchmarkPipelineObserved(b *testing.B) {
	bench, _ := workload.ByName("gzip")
	p, trace, err := bench.BuildMaterialized()
	if err != nil {
		b.Fatal(err)
	}
	cfg, err := sim.Options{Integration: sim.IntReverse}.Config()
	if err != nil {
		b.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	b.ResetTimer()
	var retired, progressed uint64
	for i := 0; i < b.N; i++ {
		pl := pipeline.New(cfg, p, emu.FromSlice(trace))
		pl.SetProgress(run.DefaultProgressInterval, func(n uint64) { progressed = n })
		st, err := pl.RunContext(ctx)
		if err != nil {
			b.Fatal(err)
		}
		retired += st.Retired
	}
	_ = progressed
	b.ReportMetric(float64(retired)/b.Elapsed().Seconds()/1e6, "Minstr/s")
}

// BenchmarkEmulator measures functional-emulation throughput.
func BenchmarkEmulator(b *testing.B) {
	bench, _ := workload.ByName("gzip")
	p, err := buildProg(bench)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	var n uint64
	for i := 0; i < b.N; i++ {
		e := emu.New(p)
		if err := e.Run(workload.MaxInstrs); err != nil {
			b.Fatal(err)
		}
		n += e.Count
	}
	b.ReportMetric(float64(n)/b.Elapsed().Seconds()/1e6, "Minstr/s")
}

func buildProg(bench workload.Benchmark) (*prog.Program, error) {
	bw, err := bench.Build()
	if err != nil {
		return nil, err
	}
	return bw.Prog, nil
}

// BenchmarkIntegrationTable measures IT lookup+insert throughput (the
// rename-stage critical loop of the paper).
func BenchmarkIntegrationTable(b *testing.B) {
	for _, mode := range []struct {
		name string
		m    core.IndexMode
	}{{"pc", core.IndexPC}, {"opcode", core.IndexOpcode}} {
		b.Run(mode.name, func(b *testing.B) {
			t := core.NewTable(core.TableConfig{Entries: 1024, Assoc: 4, Mode: mode.m, UseCallDepth: true})
			for i := 0; i < b.N; i++ {
				k := core.Key{PC: uint64(0x1000 + (i%512)*4), Op: 17, Imm: int64(i % 64), Depth: i % 8}
				if t.Match(k, regfile.PReg(i%1024), uint8(i%16), regfile.NoReg, 0) == nil {
					t.Insert(k, core.Entry{})
				}
			}
		})
	}
}

// BenchmarkRegfile measures the reference-counting state vector.
func BenchmarkRegfile(b *testing.B) {
	f := regfile.New(regfile.Config{NumRegs: 1024, GenBits: 4, RefBits: 4, GeneralMode: true})
	var live []regfile.PReg
	for i := 0; i < b.N; i++ {
		if len(live) < 512 {
			p, ok := f.Alloc()
			if !ok {
				b.Fatal("exhausted")
			}
			f.SetReady(p, uint64(i))
			live = append(live, p)
		} else {
			p := live[0]
			live = live[1:]
			f.Release(p, regfile.CauseShadow)
		}
	}
}
